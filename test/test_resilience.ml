(* Tests for the resilience layer: retry/backoff determinism, guards, fault
   injection, structured kill accounting in the driver, and per-NF isolation
   of the experiment harness under injected faults. *)

open Ir.Dsl

let geom = Cache.Geometry.xeon_e5_2667v2
let costs = Symbex.Costs.default geom

(* ---------------- retry / backoff ---------------- *)

let retry_deterministic () =
  let run () =
    let delays = ref [] in
    let calls = ref 0 in
    let rng = Util.Rng.create 99 in
    let r =
      Util.Resilience.retry ~attempts:5 ~base_delay:0.01
        ~sleep:(fun d -> delays := d :: !delays)
        ~rng ~stage:"test"
        (fun k ->
          incr calls;
          if k < 3 then Error (Util.Resilience.failure ~stage:"test" "transient")
          else Ok (k * 10))
    in
    (r, !calls, List.rev !delays)
  in
  let r1, calls1, delays1 = run () in
  let r2, calls2, delays2 = run () in
  (match r1 with
  | Ok v -> Alcotest.(check int) "succeeds on 4th attempt" 30 v
  | Error _ -> Alcotest.fail "expected success");
  Alcotest.(check int) "four calls" 4 calls1;
  Alcotest.(check int) "three backoffs" 3 (List.length delays1);
  Alcotest.(check int) "same call count" calls1 calls2;
  Alcotest.(check (list (float 0.0))) "equal seeds, equal delays" delays1 delays2;
  (match r2 with Ok _ -> () | Error _ -> Alcotest.fail "expected success");
  (* backoff grows: every delay is positive and the cap is respected *)
  List.iter
    (fun d -> Alcotest.(check bool) "positive bounded delay" true (d > 0.0 && d <= 1.5))
    delays1

let retry_exhausts_attempts () =
  let calls = ref 0 in
  let rng = Util.Rng.create 7 in
  let r =
    Util.Resilience.retry ~attempts:3 ~base_delay:0.001
      ~sleep:(fun _ -> ())
      ~rng ~stage:"flaky" ~nf:"some-nf"
      (fun _ ->
        incr calls;
        Error (Util.Resilience.failure ~stage:"flaky" "still broken"))
  in
  Alcotest.(check int) "all attempts used" 3 !calls;
  match r with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error f ->
      Alcotest.(check string) "stage preserved" "flaky" f.Util.Resilience.stage;
      Alcotest.(check bool) "reason mentions attempts" true
        (String.length f.Util.Resilience.reason > 0)

(* ---------------- guards and the failure sink ---------------- *)

let guard_contains_and_records () =
  Util.Resilience.reset ();
  let r =
    Util.Resilience.guard ~nf:"lpm-btrie" ~stage:"solving" (fun () ->
        failwith "boom")
  in
  (match r with
  | Ok _ -> Alcotest.fail "expected containment"
  | Error f ->
      Alcotest.(check string) "stage" "solving" f.Util.Resilience.stage;
      Alcotest.(check (option string)) "nf" (Some "lpm-btrie") f.Util.Resilience.nf;
      Alcotest.(check bool) "reason carries the exception" true
        (String.length f.Util.Resilience.reason > 0));
  Alcotest.(check int) "recorded once" 1
    (List.length (Util.Resilience.recorded ()));
  Alcotest.(check bool) "ok path records nothing" true
    (Util.Resilience.guard ~stage:"s" (fun () -> 42) = Ok 42);
  Alcotest.(check int) "still one" 1 (List.length (Util.Resilience.recorded ()));
  Util.Resilience.reset ();
  Alcotest.(check int) "reset clears" 0
    (List.length (Util.Resilience.recorded ()))

let guard_fail_fast_reraises () =
  Util.Resilience.set_fail_fast true;
  Fun.protect
    ~finally:(fun () -> Util.Resilience.set_fail_fast false)
    (fun () ->
      match Util.Resilience.guard ~stage:"s" (fun () -> failwith "boom") with
      | exception Failure _ -> ()
      | Ok _ | Error _ -> Alcotest.fail "fail-fast must re-raise")

let deadline_basics () =
  Alcotest.(check bool) "no_deadline never expires" false
    (Util.Resilience.expired Util.Resilience.no_deadline);
  Alcotest.(check bool) "no_deadline remaining" true
    (Util.Resilience.remaining Util.Resilience.no_deadline = infinity);
  let d = Util.Resilience.deadline_in 0.0 in
  Alcotest.(check bool) "zero deadline expired" true (Util.Resilience.expired d);
  Alcotest.(check (float 0.001)) "no time remaining" 0.0
    (Util.Resilience.remaining d);
  let d = Util.Resilience.deadline_in 3600.0 in
  Alcotest.(check bool) "far deadline alive" false (Util.Resilience.expired d);
  Alcotest.(check bool) "remaining positive" true
    (Util.Resilience.remaining d > 3000.0)

(* ---------------- fault injection ---------------- *)

let count_fires rate seed n =
  Util.Resilience.set_injection
    (Some (Util.Resilience.inject ~rate ~seed));
  Fun.protect
    ~finally:(fun () -> Util.Resilience.set_injection None)
    (fun () ->
      let fired = ref 0 in
      for _ = 1 to n do
        match Util.Resilience.checkpoint ~stage:"t" () with
        | () -> ()
        | exception Util.Resilience.Injected _ -> incr fired
      done;
      !fired)

let injection_rates () =
  Alcotest.(check int) "rate 0 never fires" 0 (count_fires 0.0 42 1000);
  Alcotest.(check int) "rate 1 always fires" 100 (count_fires 1.0 42 100);
  let a = count_fires 0.3 42 1000 in
  let b = count_fires 0.3 42 1000 in
  Alcotest.(check int) "deterministic from the seed" a b;
  Alcotest.(check bool)
    (Printf.sprintf "rate 0.3 fires ~300/1000 (got %d)" a)
    true
    (a > 200 && a < 400);
  Alcotest.(check bool) "no ambient injector by default" false
    (Util.Resilience.injection_active ())

let injected_failure_carries_stage () =
  Util.Resilience.set_injection (Some (Util.Resilience.inject ~rate:1.0 ~seed:1));
  Fun.protect
    ~finally:(fun () -> Util.Resilience.set_injection None)
    (fun () ->
      Util.Resilience.reset ();
      match
        Util.Resilience.guard ~nf:"x" ~stage:"outer" (fun () ->
            Util.Resilience.checkpoint ~nf:"x" ~stage:"inner" ();
            0)
      with
      | Ok _ -> Alcotest.fail "rate 1.0 must fire"
      | Error f ->
          (* the failure names the checkpoint, not the enclosing guard *)
          Alcotest.(check string) "injection stage" "inner" f.Util.Resilience.stage;
          Util.Resilience.reset ())

(* ---------------- driver kill accounting ---------------- *)

let run_driver ?(heap_bytes = 4096) prog =
  let cfg = Ir.Lower.program prog in
  let mem =
    Ir.Memory.create ~regions:cfg.Ir.Cfg.regions ~heap_bytes
      ~inject:(fun v -> Ir.Expr.Const v)
  in
  let config =
    { (Symbex.Driver.default_config ~n_packets:1 costs) with
      time_budget = 5.0; instr_budget = 200_000 }
  in
  Symbex.Driver.run cfg ~mem ~cache:(Cache.Model.baseline geom) config

let kill_count stats label =
  match List.assoc_opt label stats.Symbex.Driver.kill_reasons with
  | Some n -> n
  | None -> 0

let driver_survives_heap_exhaustion () =
  (* allocate 4KiB per iteration from a 4KiB heap: the second alloc must
     kill the state, not the driver *)
  let prog =
    program ~name:"t" ~entry:"process"
      [
        func "process" [ "src_port" ]
          [
            "k" <-- i 0;
            while_ (v "k" <: i 8) [ alloc "p" 4096; "k" <-- v "k" +: i 1 ];
            ret (i 0);
          ];
      ]
  in
  let r = run_driver prog in
  Alcotest.(check bool) "state killed" true (r.stats.Symbex.Driver.killed >= 1);
  Alcotest.(check bool) "heap-exhausted accounted" true
    (kill_count r.stats "heap-exhausted" >= 1);
  Alcotest.(check bool) "degraded: a fault kill occurred" true
    r.stats.Symbex.Driver.degraded

let driver_survives_out_of_bounds () =
  (* address 100 lies below every region: a memory fault, not a crash *)
  let prog =
    program ~name:"t" ~entry:"process"
      [ func "process" [ "dst_ip" ] [ load8 "x" (i 100); ret (v "x") ] ]
  in
  let r = run_driver prog in
  Alcotest.(check bool) "memory-fault accounted" true
    (kill_count r.stats "memory-fault" >= 1);
  Alcotest.(check bool) "degraded" true r.stats.Symbex.Driver.degraded

let driver_clean_run_not_degraded () =
  let prog =
    program ~name:"t" ~entry:"process"
      [ func "process" [ "dst_ip" ] [ ret (v "dst_ip") ] ]
  in
  let r = run_driver prog in
  Alcotest.(check bool) "no kills" true (r.stats.Symbex.Driver.killed = 0);
  Alcotest.(check (list (pair string int))) "no kill reasons" []
    r.stats.Symbex.Driver.kill_reasons;
  Alcotest.(check bool) "not degraded" false r.stats.Symbex.Driver.degraded

(* ---------------- Contention.load_result ---------------- *)

let write_file content =
  let path = Filename.temp_file "castan" ".sets" in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let contention_load_errors () =
  let check_error content fragment =
    let path = write_file content in
    let r = Cache.Contention.load_result path in
    Sys.remove path;
    match r with
    | Ok _ -> Alcotest.fail ("expected parse error for " ^ fragment)
    | Error reason ->
        Alcotest.(check bool)
          (Printf.sprintf "error %S mentions %S" reason fragment)
          true (contains ~sub:fragment reason)
  in
  check_error "" "empty file";
  check_error "bogus header\n" "bad header";
  check_error "castan-contention-sets v1 alpha=20 line=64 classes=1\nnope\n"
    "malformed entry";
  check_error "castan-contention-sets v1 alpha=20 line=64 classes=1\n65 0\n"
    "misaligned offset";
  (* line numbers are part of the message *)
  check_error "castan-contention-sets v1 alpha=20 line=64 classes=1\n64 0\n65 0\n"
    "line 3";
  (* missing files are errors, not exceptions *)
  (match Cache.Contention.load_result "/nonexistent/castan.sets" with
  | Ok _ -> Alcotest.fail "expected missing-file error"
  | Error _ -> ());
  (* the raising wrapper still raises Failure *)
  let path = write_file "junk\n" in
  (match Cache.Contention.load path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "load must raise Failure");
  Sys.remove path;
  (* well-formed files round-trip *)
  let path =
    write_file "castan-contention-sets v1 alpha=20 line=64 classes=2\n0 0\n64 1\n"
  in
  (match Cache.Contention.load_result path with
  | Ok t ->
      Alcotest.(check int) "alpha" 20 t.Cache.Contention.alpha;
      Alcotest.(check int) "classes" 2 t.Cache.Contention.n_classes
  | Error e -> Alcotest.fail ("unexpected error: " ^ e));
  Sys.remove path

(* ---------------- per-NF isolation under injected faults ---------------- *)

let injection_config =
  {
    Castan.Experiment.quick_config with
    samples = 401;  (* distinct cache key: never collides with other tests *)
    analysis_time = 0.5;
    analysis_instrs = 100_000;
    use_contention_model = false;
  }

let harness_tables_survive_injection () =
  Castan.Experiment.clear_cache ();
  Util.Resilience.reset ();
  Util.Resilience.set_injection
    (Some (Util.Resilience.inject ~rate:0.3 ~seed:42));
  Fun.protect
    ~finally:(fun () ->
      Util.Resilience.set_injection None;
      Util.Resilience.reset ();
      Castan.Experiment.clear_cache ())
    (fun () ->
      let nfs = List.filter (fun n -> n <> "nop") Nf.Registry.names in
      let outcomes =
        List.map
          (fun n -> (n, Castan.Experiment.try_run ~config:injection_config n))
          nfs
      in
      (* every NF is either a valid campaign or a structured failure — by
         construction of the result type an exception escaping try_run would
         have aborted the test *)
      let failed =
        List.filter (fun (_, r) -> Result.is_error r) outcomes
      in
      Alcotest.(check bool)
        (Printf.sprintf "rate 0.3 fails some NFs (got %d/%d)"
           (List.length failed) (List.length nfs))
        true
        (failed <> []);
      List.iter
        (fun (_, r) ->
          match r with
          | Ok _ -> ()
          | Error f ->
              Alcotest.(check bool) "failure names a pipeline stage" true
                (List.mem f.Util.Resilience.stage [ "symbex"; "testbed" ]))
        outcomes;
      (* failures are recorded for the end-of-run summary, and memoized:
         re-running returns identical results without re-injecting *)
      let recorded = Util.Resilience.recorded () in
      Alcotest.(check int) "one record per failed NF"
        (List.length failed) (List.length recorded);
      let again =
        List.map
          (fun n -> (n, Castan.Experiment.try_run ~config:injection_config n))
          nfs
      in
      Alcotest.(check bool) "memoized (no second injection)" true
        (List.for_all2
           (fun (_, a) (_, b) -> Result.is_error a = Result.is_error b)
           outcomes again);
      Alcotest.(check int) "no new records" (List.length recorded)
        (List.length (Util.Resilience.recorded ()));
      (* the tables render with failed:<stage> cells instead of raising *)
      ignore (Castan.Harness.run_id injection_config "table1" : float);
      ignore (Castan.Harness.run_id injection_config "table4" : float);
      (* the failure summary renders *)
      Castan.Report.print_failure_summary (Util.Resilience.recorded ()))

let expand_id_groups () =
  Alcotest.(check (list string)) "tables"
    [ "table1"; "table2"; "table3"; "table4"; "table5" ]
    (Castan.Harness.expand_id "tables");
  Alcotest.(check int) "figures" 12
    (List.length (Castan.Harness.expand_id "figures"));
  Alcotest.(check (list string)) "all expands to every id"
    Castan.Harness.ids
    (Castan.Harness.expand_id "all");
  Alcotest.(check (list string)) "plain id unchanged" [ "fig4" ]
    (Castan.Harness.expand_id "fig4")

let tests =
  [
    Alcotest.test_case "retry determinism" `Quick retry_deterministic;
    Alcotest.test_case "retry exhausts attempts" `Quick retry_exhausts_attempts;
    Alcotest.test_case "guard contains + records" `Quick guard_contains_and_records;
    Alcotest.test_case "guard fail-fast re-raises" `Quick guard_fail_fast_reraises;
    Alcotest.test_case "deadline basics" `Quick deadline_basics;
    Alcotest.test_case "injection rates" `Quick injection_rates;
    Alcotest.test_case "injected failure stage" `Quick injected_failure_carries_stage;
    Alcotest.test_case "driver: heap exhaustion kills state" `Quick
      driver_survives_heap_exhaustion;
    Alcotest.test_case "driver: OOB load kills state" `Quick
      driver_survives_out_of_bounds;
    Alcotest.test_case "driver: clean run not degraded" `Quick
      driver_clean_run_not_degraded;
    Alcotest.test_case "contention load errors" `Quick contention_load_errors;
    Alcotest.test_case "tables survive fault injection" `Slow
      harness_tables_survive_injection;
    Alcotest.test_case "expand_id groups" `Quick expand_id_groups;
  ]
