(* Tests for the performance lab's run ledger and analysis pass: ingestion
   is idempotent (byte-identical ledger) and order-independent (identical
   report), damaged ledgers degrade to counts instead of crashes, rankings
   are stable across re-ingest, and the synthetic-regression fixture shape
   yields exactly one regression finding and one suggested-next entry. *)

let qtest = QCheck_alcotest.to_alcotest

module Lab = Castan.Lab
module Manifest = Castan.Manifest

let fresh_dir () =
  let path = Filename.temp_file "castan-lab" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let ledger_path dir = Filename.concat dir "ledger.jsonl"

(* ---------------- synthetic bench manifests ---------------- *)

let identity_json git =
  Obs.Json.Obj
    [
      ("git", Obs.Json.Str git);
      ("config_digest", Obs.Json.Str "labtest-digest");
      ("seed", Obs.Json.Int 7);
      ("jobs", Obs.Json.Int 1);
      ("injection", Obs.Json.Str "none");
    ]

(* A schema-3 bench manifest.  [entries] carries *cumulative* counter
   snapshots, exactly as `bench --json` writes them. *)
let bench_manifest ~git ~generated_at ~entries =
  Obs.Json.Obj
    [
      ("tool", Obs.Json.Str "castan");
      ("schema_version", Obs.Json.Int 3);
      ("generated_at_unix", Obs.Json.Float generated_at);
      ("jobs", Obs.Json.Int 1);
      ("identity", identity_json git);
      ( "experiments_timed",
        Obs.Json.List
          (List.map
             (fun (id, seconds, counters) ->
               Obs.Json.Obj
                 [
                   ("id", Obs.Json.Str id);
                   ("seconds", Obs.Json.Float seconds);
                   ("identity", identity_json git);
                   ( "metrics",
                     Obs.Json.Obj
                       [
                         ( "counters",
                           Obs.Json.Obj
                             (List.map
                                (fun (k, v) -> (k, Obs.Json.Int v))
                                counters) );
                       ] );
                 ])
             entries) );
    ]

let write_manifest dir name json =
  let path = Filename.concat dir name in
  write_file path (Obs.Json.to_string json ^ "\n");
  path

(* The regression fixture shape: fig4 steady inside the noise floor, fig12
   regressing +60% with solver-dominated counter growth. *)
let regression_pair dir =
  let counters sat instrs =
    [
      ("solver.verdict.sat", sat);
      ("solver.cache.hit", sat * 9);
      ("solver.cache.miss", sat);
      ("symbex.executed_instrs", instrs);
    ]
  in
  let base =
    bench_manifest ~git:"base" ~generated_at:1000.0
      ~entries:
        [
          ("fig4", 2.0, counters 100 50_000);
          ("fig12", 5.0, counters 400 90_000);
        ]
  in
  let regress =
    bench_manifest ~git:"regress" ~generated_at:2000.0
      ~entries:
        [
          ("fig4", 2.01, counters 100 50_000);
          ("fig12", 8.0, counters 1300 100_000);
        ]
  in
  ( write_manifest dir "synth_base.json" base,
    write_manifest dir "synth_regress.json" regress )

(* Random wall times well clear of the gate boundaries (either under the
   noise floor or far above it), so float jitter can't flip a property. *)
let gen_manifests =
  QCheck.Gen.(
    let* n = int_range 2 5 in
    let* seconds =
      list_size (return n)
        (list_size (return 3) (map (fun k -> 0.5 +. float_of_int k) (int_range 0 40)))
    in
    return
      (List.mapi
         (fun i secs ->
           let entries =
             List.mapi
               (fun j s ->
                 ( Printf.sprintf "exp%d" j,
                   s,
                   [ ("solver.verdict.sat", (i + 1) * 100 * (j + 1)) ] ))
               secs
           in
           bench_manifest
             ~git:(Printf.sprintf "rev%d" i)
             ~generated_at:(1000.0 +. (100.0 *. float_of_int i))
             ~entries)
         seconds))

let arb_manifests = QCheck.make ~print:(fun _ -> "<manifests>") gen_manifests

let ingest_ok dir paths =
  match Lab.ingest ~dir paths with
  | Ok stats -> stats
  | Error e -> Alcotest.failf "ingest: %s" e

let load_ok dir =
  match Lab.load ~dir with
  | Ok store -> store
  | Error e -> Alcotest.failf "load: %s" e

(* The rendered report with the ledger's own directory blanked: the one
   field that is allowed to differ between two stores holding the same
   ingested set. *)
let report_string dir =
  let r = Lab.report (load_ok dir) in
  let r = { r with Lab.rp_store = { r.Lab.rp_store with Lab.dir = "" } } in
  Obs.Json.to_string (Lab.report_json r)

(* ---------------- properties ---------------- *)

let test_ingest_idempotent =
  QCheck.Test.make ~name:"re-ingest leaves the ledger byte-identical"
    ~count:30 arb_manifests (fun manifests ->
      with_dir (fun src ->
          with_dir (fun lab ->
              let paths =
                List.mapi
                  (fun i j ->
                    write_manifest src (Printf.sprintf "m%d.json" i) j)
                  manifests
              in
              let s1 = ingest_ok lab paths in
              let first = read_file (ledger_path lab) in
              let s2 = ingest_ok lab paths in
              let second = read_file (ledger_path lab) in
              s1.Lab.ingested = List.length manifests
              && s2.Lab.ingested = 0
              && s2.Lab.duplicate = List.length manifests
              && first = second)))

let test_ingest_order_independent =
  QCheck.Test.make
    ~name:"ingest order does not change the report" ~count:30
    QCheck.(pair arb_manifests (int_range 0 1000))
    (fun (manifests, salt) ->
      with_dir (fun src ->
          let paths =
            List.mapi
              (fun i j -> write_manifest src (Printf.sprintf "m%d.json" i) j)
              manifests
          in
          (* a deterministic shuffle keyed on the generated salt *)
          let shuffled =
            List.map
              (fun p -> (Hashtbl.hash (salt, p), p))
              paths
            |> List.sort compare |> List.map snd
          in
          with_dir (fun lab_a ->
              with_dir (fun lab_b ->
                  ignore (ingest_ok lab_a paths);
                  ignore (ingest_ok lab_b shuffled);
                  report_string lab_a = report_string lab_b))))

let test_rankings_stable =
  QCheck.Test.make ~name:"rankings are identical across re-ingest" ~count:30
    arb_manifests (fun manifests ->
      with_dir (fun src ->
          with_dir (fun lab ->
              let paths =
                List.mapi
                  (fun i j ->
                    write_manifest src (Printf.sprintf "m%d.json" i) j)
                  manifests
              in
              ignore (ingest_ok lab paths);
              let r1 = (Lab.report (load_ok lab)).Lab.rp_rankings in
              ignore (ingest_ok lab paths);
              let r2 = (Lab.report (load_ok lab)).Lab.rp_rankings in
              r1 = r2 && r1 <> [])))

(* ---------------- damaged-ledger handling ---------------- *)

let test_damaged_ledger () =
  with_dir (fun src ->
      with_dir (fun lab ->
          let base, regress = regression_pair src in
          ignore (ingest_ok lab [ base; regress ]);
          let clean = read_file (ledger_path lab) in
          let lines =
            String.split_on_char '\n' clean
            |> List.filter (fun l -> String.trim l <> "")
          in
          let first_line = List.hd lines in
          let skewed =
            (* same record, foreign schema version: must be rejected, not
               decoded *)
            Obs.Json.Obj
              [
                ("schema_version", Obs.Json.Int 99);
                ("kind", Obs.Json.Str "run");
              ]
            |> Obs.Json.to_string
          in
          write_file (ledger_path lab)
            (clean ^ first_line ^ "\n" ^ skewed ^ "\n{\"torn\": tru");
          let store = load_ok lab in
          Alcotest.(check int) "runs survive" 2 (List.length store.Lab.runs);
          Alcotest.(check int) "duplicate counted" 1 store.Lab.duplicates;
          Alcotest.(check int) "skewed rejected" 1 store.Lab.rejected;
          Alcotest.(check int) "torn final line" 1 store.Lab.torn;
          (* and the analysis still runs on what survived *)
          let report = Lab.report store in
          Alcotest.(check bool) "rankings non-empty" true
            (report.Lab.rp_rankings <> [])))

let test_torn_middle_rejected () =
  with_dir (fun src ->
      with_dir (fun lab ->
          let base, _ = regression_pair src in
          ignore (ingest_ok lab [ base ]);
          let clean = read_file (ledger_path lab) in
          write_file (ledger_path lab) ("{\"torn\": tru\n" ^ clean);
          let store = load_ok lab in
          (* damage *not* on the final line is rejection, not tearing *)
          Alcotest.(check int) "rejected" 1 store.Lab.rejected;
          Alcotest.(check int) "torn" 0 store.Lab.torn;
          Alcotest.(check int) "runs survive" 1 (List.length store.Lab.runs)))

let test_unrecognized_inputs_counted () =
  with_dir (fun src ->
      with_dir (fun lab ->
          let junk = Filename.concat src "junk.json" in
          write_file junk "{\"neither\": \"fish nor fowl\"}\n";
          let notjson = Filename.concat src "not.json" in
          write_file notjson "]]]\n";
          let stats = ingest_ok lab [ junk; notjson ] in
          Alcotest.(check int) "nothing ingested" 0 stats.Lab.ingested;
          Alcotest.(check int) "both counted as errors" 2
            (List.length stats.Lab.errors)))

(* ---------------- the synthetic regression contract ---------------- *)

let test_synthetic_regression () =
  with_dir (fun src ->
      with_dir (fun lab ->
          let base, regress = regression_pair src in
          ignore (ingest_ok lab [ base; regress ]);
          let report = Lab.report (load_ok lab) in
          Alcotest.(check int) "exactly one regression finding" 1
            (List.length report.Lab.rp_regressions);
          let rg = List.hd report.Lab.rp_regressions in
          Alcotest.(check string) "the regressing experiment" "fig12"
            rg.Lab.rg_id;
          Alcotest.(check string) "attributed to the solver" "solver"
            rg.Lab.rg_bound;
          Alcotest.(check int) "exactly one suggested_next" 1
            (List.length report.Lab.rp_suggestions);
          let sg = List.hd report.Lab.rp_suggestions in
          Alcotest.(check string) "an A/B suggestion" "regression-ab"
            sg.Lab.sg_kind;
          let contains_fig12 s =
            let n = String.length s in
            let rec go i =
              i + 5 <= n && (String.sub s i 5 = "fig12" || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "rationale names the experiment" true
            (contains_fig12 sg.Lab.sg_rationale)))

let test_steady_pair_no_findings () =
  with_dir (fun src ->
      with_dir (fun lab ->
          let entries = [ ("fig4", 2.0, [ ("solver.verdict.sat", 10) ]) ] in
          let a =
            write_manifest src "a.json"
              (bench_manifest ~git:"a" ~generated_at:1000.0 ~entries)
          in
          let b =
            write_manifest src "b.json"
              (bench_manifest ~git:"b" ~generated_at:2000.0 ~entries)
          in
          ignore (ingest_ok lab [ a; b ]);
          let report = Lab.report (load_ok lab) in
          Alcotest.(check int) "no regressions" 0
            (List.length report.Lab.rp_regressions);
          Alcotest.(check int) "no suggestions" 0
            (List.length report.Lab.rp_suggestions)))

let tests =
  [
    qtest test_ingest_idempotent;
    qtest test_ingest_order_independent;
    qtest test_rankings_stable;
    Alcotest.test_case "damaged ledger records are counted, not fatal" `Quick
      test_damaged_ledger;
    Alcotest.test_case "mid-ledger damage is rejection, not tearing" `Quick
      test_torn_middle_rejected;
    Alcotest.test_case "unrecognized inputs are skipped with reasons" `Quick
      test_unrecognized_inputs_counted;
    Alcotest.test_case "synthetic regression: one finding, one suggestion"
      `Quick test_synthetic_regression;
    Alcotest.test_case "steady pair: no findings" `Quick
      test_steady_pair_no_findings;
  ]
