(* Tests for the performance lab's run ledger and analysis pass: ingestion
   is idempotent (byte-identical ledger) and order-independent (identical
   report), damaged ledgers degrade to counts instead of crashes, rankings
   are stable across re-ingest, and the synthetic-regression fixture shape
   yields exactly one regression finding and one suggested-next entry. *)

let qtest = QCheck_alcotest.to_alcotest

module Lab = Castan.Lab
module Manifest = Castan.Manifest

let fresh_dir () =
  let path = Filename.temp_file "castan-lab" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let ledger_path dir = Filename.concat dir "ledger.jsonl"

(* ---------------- synthetic bench manifests ---------------- *)

let identity_json git =
  Obs.Json.Obj
    [
      ("git", Obs.Json.Str git);
      ("config_digest", Obs.Json.Str "labtest-digest");
      ("seed", Obs.Json.Int 7);
      ("jobs", Obs.Json.Int 1);
      ("injection", Obs.Json.Str "none");
    ]

(* A schema-3 bench manifest.  [entries] carries *cumulative* counter
   snapshots, exactly as `bench --json` writes them. *)
let bench_manifest ~git ~generated_at ~entries =
  Obs.Json.Obj
    [
      ("tool", Obs.Json.Str "castan");
      ("schema_version", Obs.Json.Int 3);
      ("generated_at_unix", Obs.Json.Float generated_at);
      ("jobs", Obs.Json.Int 1);
      ("identity", identity_json git);
      ( "experiments_timed",
        Obs.Json.List
          (List.map
             (fun (id, seconds, counters) ->
               Obs.Json.Obj
                 [
                   ("id", Obs.Json.Str id);
                   ("seconds", Obs.Json.Float seconds);
                   ("identity", identity_json git);
                   ( "metrics",
                     Obs.Json.Obj
                       [
                         ( "counters",
                           Obs.Json.Obj
                             (List.map
                                (fun (k, v) -> (k, Obs.Json.Int v))
                                counters) );
                       ] );
                 ])
             entries) );
    ]

let write_manifest dir name json =
  let path = Filename.concat dir name in
  write_file path (Obs.Json.to_string json ^ "\n");
  path

(* The regression fixture shape: fig4 steady inside the noise floor, fig12
   regressing +60% with solver-dominated counter growth. *)
let regression_pair dir =
  let counters sat instrs =
    [
      ("solver.verdict.sat", sat);
      ("solver.cache.hit", sat * 9);
      ("solver.cache.miss", sat);
      ("symbex.executed_instrs", instrs);
    ]
  in
  let base =
    bench_manifest ~git:"base" ~generated_at:1000.0
      ~entries:
        [
          ("fig4", 2.0, counters 100 50_000);
          ("fig12", 5.0, counters 400 90_000);
        ]
  in
  let regress =
    bench_manifest ~git:"regress" ~generated_at:2000.0
      ~entries:
        [
          ("fig4", 2.01, counters 100 50_000);
          ("fig12", 8.0, counters 1300 100_000);
        ]
  in
  ( write_manifest dir "synth_base.json" base,
    write_manifest dir "synth_regress.json" regress )

(* Random wall times well clear of the gate boundaries (either under the
   noise floor or far above it), so float jitter can't flip a property. *)
let gen_manifests =
  QCheck.Gen.(
    let* n = int_range 2 5 in
    let* seconds =
      list_size (return n)
        (list_size (return 3) (map (fun k -> 0.5 +. float_of_int k) (int_range 0 40)))
    in
    return
      (List.mapi
         (fun i secs ->
           let entries =
             List.mapi
               (fun j s ->
                 ( Printf.sprintf "exp%d" j,
                   s,
                   [ ("solver.verdict.sat", (i + 1) * 100 * (j + 1)) ] ))
               secs
           in
           bench_manifest
             ~git:(Printf.sprintf "rev%d" i)
             ~generated_at:(1000.0 +. (100.0 *. float_of_int i))
             ~entries)
         seconds))

let arb_manifests = QCheck.make ~print:(fun _ -> "<manifests>") gen_manifests

let ingest_ok dir paths =
  match Lab.ingest ~dir paths with
  | Ok stats -> stats
  | Error e -> Alcotest.failf "ingest: %s" e

let load_ok dir =
  match Lab.load ~dir with
  | Ok store -> store
  | Error e -> Alcotest.failf "load: %s" e

(* The rendered report with the ledger's own directory blanked: the one
   field that is allowed to differ between two stores holding the same
   ingested set. *)
let report_string dir =
  let r = Lab.report (load_ok dir) in
  let r = { r with Lab.rp_store = { r.Lab.rp_store with Lab.dir = "" } } in
  Obs.Json.to_string (Lab.report_json r)

(* ---------------- properties ---------------- *)

let test_ingest_idempotent =
  QCheck.Test.make ~name:"re-ingest leaves the ledger byte-identical"
    ~count:30 arb_manifests (fun manifests ->
      with_dir (fun src ->
          with_dir (fun lab ->
              let paths =
                List.mapi
                  (fun i j ->
                    write_manifest src (Printf.sprintf "m%d.json" i) j)
                  manifests
              in
              let s1 = ingest_ok lab paths in
              let first = read_file (ledger_path lab) in
              let s2 = ingest_ok lab paths in
              let second = read_file (ledger_path lab) in
              s1.Lab.ingested = List.length manifests
              && s2.Lab.ingested = 0
              && s2.Lab.duplicate = List.length manifests
              && first = second)))

let test_ingest_order_independent =
  QCheck.Test.make
    ~name:"ingest order does not change the report" ~count:30
    QCheck.(pair arb_manifests (int_range 0 1000))
    (fun (manifests, salt) ->
      with_dir (fun src ->
          let paths =
            List.mapi
              (fun i j -> write_manifest src (Printf.sprintf "m%d.json" i) j)
              manifests
          in
          (* a deterministic shuffle keyed on the generated salt *)
          let shuffled =
            List.map
              (fun p -> (Hashtbl.hash (salt, p), p))
              paths
            |> List.sort compare |> List.map snd
          in
          with_dir (fun lab_a ->
              with_dir (fun lab_b ->
                  ignore (ingest_ok lab_a paths);
                  ignore (ingest_ok lab_b shuffled);
                  report_string lab_a = report_string lab_b))))

let test_rankings_stable =
  QCheck.Test.make ~name:"rankings are identical across re-ingest" ~count:30
    arb_manifests (fun manifests ->
      with_dir (fun src ->
          with_dir (fun lab ->
              let paths =
                List.mapi
                  (fun i j ->
                    write_manifest src (Printf.sprintf "m%d.json" i) j)
                  manifests
              in
              ignore (ingest_ok lab paths);
              let r1 = (Lab.report (load_ok lab)).Lab.rp_rankings in
              ignore (ingest_ok lab paths);
              let r2 = (Lab.report (load_ok lab)).Lab.rp_rankings in
              r1 = r2 && r1 <> [])))

(* ---------------- damaged-ledger handling ---------------- *)

let test_damaged_ledger () =
  with_dir (fun src ->
      with_dir (fun lab ->
          let base, regress = regression_pair src in
          ignore (ingest_ok lab [ base; regress ]);
          let clean = read_file (ledger_path lab) in
          let lines =
            String.split_on_char '\n' clean
            |> List.filter (fun l -> String.trim l <> "")
          in
          let first_line = List.hd lines in
          let skewed =
            (* same record, foreign schema version: must be rejected, not
               decoded *)
            Obs.Json.Obj
              [
                ("schema_version", Obs.Json.Int 99);
                ("kind", Obs.Json.Str "run");
              ]
            |> Obs.Json.to_string
          in
          write_file (ledger_path lab)
            (clean ^ first_line ^ "\n" ^ skewed ^ "\n{\"torn\": tru");
          let store = load_ok lab in
          Alcotest.(check int) "runs survive" 2 (List.length store.Lab.runs);
          Alcotest.(check int) "duplicate counted" 1 store.Lab.duplicates;
          Alcotest.(check int) "skewed rejected" 1 store.Lab.rejected;
          Alcotest.(check int) "torn final line" 1 store.Lab.torn;
          (* and the analysis still runs on what survived *)
          let report = Lab.report store in
          Alcotest.(check bool) "rankings non-empty" true
            (report.Lab.rp_rankings <> [])))

let test_torn_middle_rejected () =
  with_dir (fun src ->
      with_dir (fun lab ->
          let base, _ = regression_pair src in
          ignore (ingest_ok lab [ base ]);
          let clean = read_file (ledger_path lab) in
          write_file (ledger_path lab) ("{\"torn\": tru\n" ^ clean);
          let store = load_ok lab in
          (* damage *not* on the final line is rejection, not tearing *)
          Alcotest.(check int) "rejected" 1 store.Lab.rejected;
          Alcotest.(check int) "torn" 0 store.Lab.torn;
          Alcotest.(check int) "runs survive" 1 (List.length store.Lab.runs)))

let test_unrecognized_inputs_counted () =
  with_dir (fun src ->
      with_dir (fun lab ->
          let junk = Filename.concat src "junk.json" in
          write_file junk "{\"neither\": \"fish nor fowl\"}\n";
          let notjson = Filename.concat src "not.json" in
          write_file notjson "]]]\n";
          let stats = ingest_ok lab [ junk; notjson ] in
          Alcotest.(check int) "nothing ingested" 0 stats.Lab.ingested;
          Alcotest.(check int) "both counted as errors" 2
            (List.length stats.Lab.errors)))

(* ---------------- the synthetic regression contract ---------------- *)

let test_synthetic_regression () =
  with_dir (fun src ->
      with_dir (fun lab ->
          let base, regress = regression_pair src in
          ignore (ingest_ok lab [ base; regress ]);
          let report = Lab.report (load_ok lab) in
          Alcotest.(check int) "exactly one regression finding" 1
            (List.length report.Lab.rp_regressions);
          let rg = List.hd report.Lab.rp_regressions in
          Alcotest.(check string) "the regressing experiment" "fig12"
            rg.Lab.rg_id;
          Alcotest.(check string) "attributed to the solver" "solver"
            rg.Lab.rg_bound;
          Alcotest.(check int) "exactly one suggested_next" 1
            (List.length report.Lab.rp_suggestions);
          let sg = List.hd report.Lab.rp_suggestions in
          Alcotest.(check string) "an A/B suggestion" "regression-ab"
            sg.Lab.sg_kind;
          let contains_fig12 s =
            let n = String.length s in
            let rec go i =
              i + 5 <= n && (String.sub s i 5 = "fig12" || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "rationale names the experiment" true
            (contains_fig12 sg.Lab.sg_rationale)))

let test_steady_pair_no_findings () =
  with_dir (fun src ->
      with_dir (fun lab ->
          let entries = [ ("fig4", 2.0, [ ("solver.verdict.sat", 10) ]) ] in
          let a =
            write_manifest src "a.json"
              (bench_manifest ~git:"a" ~generated_at:1000.0 ~entries)
          in
          let b =
            write_manifest src "b.json"
              (bench_manifest ~git:"b" ~generated_at:2000.0 ~entries)
          in
          ignore (ingest_ok lab [ a; b ]);
          let report = Lab.report (load_ok lab) in
          Alcotest.(check int) "no regressions" 0
            (List.length report.Lab.rp_regressions);
          Alcotest.(check int) "no suggestions" 0
            (List.length report.Lab.rp_suggestions)))

(* ---------------- verdicts and the hypothesis engine ---------------- *)

(* Verdict generator: floats quantized to quarters (exactly representable,
   so JSON round-trips are byte-exact), distinct generated_at per index so
   the store's sort order matches append order. *)
let gen_verdict i =
  QCheck.Gen.(
    let* kind = oneofl [ "regression-ab"; "jobs-sweep"; "failure" ] in
    let* outcome = oneofl [ Lab.Held; Lab.Refuted; Lab.Inconclusive ] in
    let* experiment = oneofl [ None; Some "fig12"; Some "fig13" ] in
    let* q1 = int_range 0 40 in
    let* q2 = int_range 0 40 in
    let* runs = int_range 0 4 in
    let* salt = int_range 0 1000 in
    let quarter k = float_of_int k /. 4.0 in
    return
      (Lab.with_verdict_id
         {
           Lab.vd_id = "";
           vd_hypothesis = Printf.sprintf "%s|exp%d|%d" kind i salt;
           vd_kind = kind;
           vd_experiment = experiment;
           vd_outcome = outcome;
           vd_base_run = "";
           vd_test_run = "";
           vd_base_seconds = quarter q1;
           vd_test_seconds = quarter q2;
           vd_delta_pct = quarter (q2 - q1);
           vd_noise = 0.05;
           vd_max_regress = 20.0;
           vd_runs_performed = runs;
           vd_generated_at = 1000.0 +. float_of_int i;
           vd_detail = Printf.sprintf "synthetic verdict %d" i;
         }))

let gen_verdicts =
  QCheck.Gen.(
    let* n = int_range 1 6 in
    let rec go i acc =
      if i >= n then return (List.rev acc)
      else
        let* v = gen_verdict i in
        go (i + 1) (v :: acc)
    in
    go 0 [])

let arb_verdicts = QCheck.make ~print:(fun _ -> "<verdicts>") gen_verdicts

let test_verdict_roundtrip =
  QCheck.Test.make
    ~name:"verdicts round-trip byte-identically and dedup on re-append"
    ~count:30 arb_verdicts (fun verdicts ->
      with_dir (fun lab ->
          List.for_all
            (fun v -> Lab.append_verdict ~dir:lab v = Ok true)
            verdicts
          &&
          let first = read_file (ledger_path lab) in
          let store = load_ok lab in
          let reencoded =
            List.map
              (fun v -> Obs.Json.to_string (Lab.verdict_json v) ^ "\n")
              store.Lab.verdicts
            |> String.concat ""
          in
          (* the store may collapse duplicate vd_ids the generator made *)
          let dedup = List.length store.Lab.verdicts in
          dedup <= List.length verdicts
          && (dedup < List.length verdicts || reencoded = first)
          && List.for_all
               (fun v -> Lab.append_verdict ~dir:lab v = Ok false)
               verdicts
          && read_file (ledger_path lab) = first))

let test_filter_runs_order_independent =
  QCheck.Test.make
    ~name:"filter_runs is a pure function of the ledger, not ingest order"
    ~count:30
    QCheck.(pair arb_manifests (int_range 0 1000))
    (fun (manifests, salt) ->
      with_dir (fun src ->
          let paths =
            List.mapi
              (fun i j -> write_manifest src (Printf.sprintf "m%d.json" i) j)
              manifests
          in
          let shuffled =
            List.map (fun p -> (Hashtbl.hash (salt, p), p)) paths
            |> List.sort compare |> List.map snd
          in
          with_dir (fun lab_a ->
              with_dir (fun lab_b ->
                  ignore (ingest_ok lab_a paths);
                  ignore (ingest_ok lab_b shuffled);
                  let ids dir filt =
                    match filt (load_ok dir) with
                    | Ok runs ->
                        List.map (fun r -> r.Lab.run_id) runs
                    | Error e -> Alcotest.failf "filter_runs: %s" e
                  in
                  ids lab_a (Lab.filter_runs ~experiment:"exp1")
                  = ids lab_b (Lab.filter_runs ~experiment:"exp1")
                  && ids lab_a (Lab.filter_runs ~since:"latest~1")
                     = ids lab_b (Lab.filter_runs ~since:"latest~1")))))

let test_since_out_of_range () =
  with_dir (fun src ->
      with_dir (fun lab ->
          let base, regress = regression_pair src in
          ignore (ingest_ok lab [ base; regress ]);
          let store = load_ok lab in
          match Lab.find_run store "latest~99" with
          | Ok _ -> Alcotest.fail "latest~99 resolved against 2 runs"
          | Error e ->
              let contains hay needle =
                let n = String.length hay and m = String.length needle in
                let rec go i =
                  i + m <= n && (String.sub hay i m = needle || go (i + 1))
                in
                go 0
              in
              Alcotest.(check bool) "message reports the ledger depth" true
                (contains e "the ledger has 2 run(s)")))

(* A fake executor for the A/B plan: cache-on finishes in 1s, cache-off in
   2s — comfortably past the 20% gate, so the verdict must be Held.  It
   never writes the --metrics artifact; the engine's fallback entry carries
   the wall time, which is all Cmp_ab_wall reads. *)
let ab_executor ~argv ~log:_ =
  if List.mem "--no-solver-cache" argv then Ok (0, 2.0) else Ok (0, 1.0)

let run_next_ok ?executor ?skip lab =
  match
    Lab.run_next ?executor ?skip ~dir:lab ~castan:"castan-under-test" ()
  with
  | Ok o -> o
  | Error e -> Alcotest.failf "run_next: %s" e

let test_run_next_end_to_end () =
  with_dir (fun src ->
      with_dir (fun lab ->
          let base, regress = regression_pair src in
          ignore (ingest_ok lab [ base; regress ]);
          let o = run_next_ok ~executor:ab_executor lab in
          Alcotest.(check int) "both arms ran" 2 o.Lab.xo_runs_performed;
          (match o.Lab.xo_verdict with
          | None -> Alcotest.fail "no verdict appended"
          | Some v ->
              Alcotest.(check string) "verdict held" "held"
                (Lab.outcome_name v.Lab.vd_outcome);
              Alcotest.(check string) "kind" "regression-ab" v.Lab.vd_kind;
              Alcotest.(check (option string)) "experiment" (Some "fig12")
                v.Lab.vd_experiment);
          let after_first = read_file (ledger_path lab) in
          (* the regression's evidence is resolved: second call runs nothing *)
          let o2 = run_next_ok ~executor:ab_executor lab in
          Alcotest.(check int) "no new subprocess" 0 o2.Lab.xo_runs_performed;
          Alcotest.(check bool) "no new verdict" true
            (o2.Lab.xo_verdict = None);
          Alcotest.(check string) "ledger untouched" after_first
            (read_file (ledger_path lab));
          (* and the report shows the hypothesis resolved, not re-suggested *)
          let report = Lab.report (load_ok lab) in
          Alcotest.(check int) "suggestion suppressed" 0
            (List.length report.Lab.rp_suggestions);
          match
            List.find_opt
              (fun h -> h.Lab.hy_status = "held")
              report.Lab.rp_hypotheses
          with
          | Some h -> Alcotest.(check int) "one verdict" 1 h.Lab.hy_verdicts
          | None -> Alcotest.fail "no held hypothesis in the report"))

let test_refuted_verdict_suppresses () =
  with_dir (fun src ->
      with_dir (fun lab ->
          let base, regress = regression_pair src in
          ignore (ingest_ok lab [ base; regress ]);
          let report = Lab.report (load_ok lab) in
          let sg = List.hd report.Lab.rp_suggestions in
          let v =
            Lab.with_verdict_id
              {
                Lab.vd_id = "";
                vd_hypothesis = sg.Lab.sg_hypothesis;
                vd_kind = sg.Lab.sg_kind;
                vd_experiment = sg.Lab.sg_experiment;
                vd_outcome = Lab.Refuted;
                vd_base_run = "";
                vd_test_run = "";
                vd_base_seconds = 1.0;
                vd_test_seconds = 1.0;
                vd_delta_pct = 0.0;
                vd_noise = 0.05;
                vd_max_regress = 20.0;
                vd_runs_performed = 2;
                vd_generated_at = 3000.0;
                vd_detail = "synthetic refutation";
              }
          in
          (match Lab.append_verdict ~dir:lab v with
          | Ok true -> ()
          | Ok false -> Alcotest.fail "verdict deduped on first append"
          | Error e -> Alcotest.failf "append_verdict: %s" e);
          let report' = Lab.report (load_ok lab) in
          Alcotest.(check int) "suggestion suppressed" 0
            (List.length report'.Lab.rp_suggestions);
          (* the regression finding itself still stands — only the already
             tested hypothesis is silenced *)
          Alcotest.(check int) "regression still reported" 1
            (List.length report'.Lab.rp_regressions);
          match report'.Lab.rp_hypotheses with
          | [ h ] ->
              Alcotest.(check string) "status" "refuted" h.Lab.hy_status;
              Alcotest.(check string) "key" sg.Lab.sg_hypothesis h.Lab.hy_key
          | l -> Alcotest.failf "%d hypothesis rows, expected 1"
                   (List.length l)))

let test_crash_mid_action_resumable () =
  with_dir (fun src ->
      with_dir (fun lab ->
          let base, regress = regression_pair src in
          ignore (ingest_ok lab [ base; regress ]);
          (* the A/B plan passes checkpoints lab-exec(on), lab-ingest(on),
             lab-exec(off), ...; crashing at the 3rd kills the process after
             the first arm's artifact is ingested but before the second arm
             runs *)
          Util.Resilience.set_crash_point (Some 3);
          Fun.protect
            ~finally:(fun () -> Util.Resilience.set_crash_point None)
            (fun () ->
              match
                Lab.run_next ~executor:ab_executor ~dir:lab
                  ~castan:"castan-under-test" ()
              with
              | exception Util.Resilience.Crashed _ -> ()
              | Ok _ | Error _ ->
                  Alcotest.fail "armed crash point did not fire");
          (* the half-done action left a loadable ledger with the first
             arm's run recorded ... *)
          let store = load_ok lab in
          Alcotest.(check int) "evidence + one arm" 3
            (List.length store.Lab.runs);
          Alcotest.(check int) "no verdict yet" 0
            (List.length store.Lab.verdicts);
          (* ... and a clean re-run completes the action, re-running only
             the missing arm *)
          let o = run_next_ok ~executor:ab_executor lab in
          Alcotest.(check int) "only the missing arm re-ran" 1
            o.Lab.xo_runs_performed;
          match o.Lab.xo_verdict with
          | Some v ->
              Alcotest.(check string) "verdict held" "held"
                (Lab.outcome_name v.Lab.vd_outcome)
          | None -> Alcotest.fail "resumed action appended no verdict"))

let test_loop_drains_queue () =
  with_dir (fun src ->
      with_dir (fun lab ->
          let base, regress = regression_pair src in
          ignore (ingest_ok lab [ base; regress ]);
          match
            Lab.loop ~executor:ab_executor ~dir:lab
              ~castan:"castan-under-test" ()
          with
          | Error e -> Alcotest.failf "loop: %s" e
          | Ok stats ->
              Alcotest.(check string) "stopped on empty queue" "queue-empty"
                stats.Lab.lo_stop;
              Alcotest.(check int) "one action" 1 stats.Lab.lo_iterations;
              Alcotest.(check int) "two subprocess runs" 2
                stats.Lab.lo_runs_performed;
              Alcotest.(check int) "one verdict" 1
                (List.length stats.Lab.lo_verdicts)))

let tests =
  [
    qtest test_ingest_idempotent;
    qtest test_ingest_order_independent;
    qtest test_rankings_stable;
    Alcotest.test_case "damaged ledger records are counted, not fatal" `Quick
      test_damaged_ledger;
    Alcotest.test_case "mid-ledger damage is rejection, not tearing" `Quick
      test_torn_middle_rejected;
    Alcotest.test_case "unrecognized inputs are skipped with reasons" `Quick
      test_unrecognized_inputs_counted;
    Alcotest.test_case "synthetic regression: one finding, one suggestion"
      `Quick test_synthetic_regression;
    Alcotest.test_case "steady pair: no findings" `Quick
      test_steady_pair_no_findings;
    qtest test_verdict_roundtrip;
    qtest test_filter_runs_order_independent;
    Alcotest.test_case "latest~K past the ledger depth names the depth"
      `Quick test_since_out_of_range;
    Alcotest.test_case "run-next: A/B end-to-end, idempotent on re-run"
      `Quick test_run_next_end_to_end;
    Alcotest.test_case "a refuted verdict suppresses its suggestion" `Quick
      test_refuted_verdict_suppresses;
    Alcotest.test_case "crash mid-action leaves the ledger resumable" `Quick
      test_crash_mid_action_resumable;
    Alcotest.test_case "loop drains the queue and stops" `Quick
      test_loop_drains_queue;
  ]
