(* The cost-attribution profiler: deterministic output, well-formed collapsed
   stacks, and — like the rest of lib/obs — zero perturbation of analysis
   results when enabled. *)

let with_profile f =
  Obs.Profile.reset ();
  Obs.Profile.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Profile.set_enabled false;
      Obs.Profile.reset ())
    f

(* One profiled DUT replay; returns the NF so reports can derive blocks. *)
let replay_profiled ~name ~seed ~samples =
  let nf = Nf.Registry.find name in
  let w =
    Testbed.Workload.shape nf.Nf.Nf_def.shape
      (Testbed.Traffic.unirand ~scale:`Quick ~seed ())
  in
  let dut = Testbed.Dut.create nf in
  ignore (Testbed.Dut.replay dut w ~samples : Testbed.Dut.sample array);
  nf

(* ---------------- disabled path ---------------- *)

let disabled_records_nothing () =
  Obs.Profile.reset ();
  Alcotest.(check bool) "disabled by default" false (Obs.Profile.enabled ());
  Obs.Profile.enter ~func:"f" ~pc:0;
  Obs.Profile.add_retire ~weight:10;
  Obs.Profile.add_exec ~instrs:5 ~cycles:50 ~loads:1 ~stores:1;
  Obs.Profile.add_access ~write:false Obs.Profile.Dram ~cycles:300;
  Obs.Profile.add_timer "solver" 1.0;
  Alcotest.(check int) "no sites" 0 (List.length (Obs.Profile.sites ()));
  Alcotest.(check int) "no cycles" 0 (Obs.Profile.total_cycles ());
  Alcotest.(check int) "no timers" 0 (List.length (Obs.Profile.timers ()))

(* pre-[enter] attributions drop into a detached record, never the snapshot *)
let pre_enter_attributions_dropped () =
  with_profile (fun () ->
      Obs.Profile.add_retire ~weight:100;
      Alcotest.(check int) "nothing attributed" 0 (Obs.Profile.total_cycles ());
      Obs.Profile.enter ~func:"f" ~pc:0;
      Obs.Profile.add_exec ~instrs:1 ~cycles:7 ~loads:0 ~stores:0;
      Alcotest.(check int) "post-enter attributed" 7
        (Obs.Profile.total_cycles ()))

(* ---------------- determinism ---------------- *)

let collapsed_of ~name ~seed ~samples =
  with_profile (fun () ->
      let nf = replay_profiled ~name ~seed ~samples in
      Castan.Profile_report.collapsed ~nf:name nf.Nf.Nf_def.program)

let replay_collapsed_deterministic () =
  let a = collapsed_of ~name:"nat-hash-ring" ~seed:11 ~samples:400 in
  let b = collapsed_of ~name:"nat-hash-ring" ~seed:11 ~samples:400 in
  Alcotest.(check bool) "non-empty" true (String.length a > 0);
  Alcotest.(check string) "byte-identical collapsed output" a b

(* ---------------- collapsed format and accounting ---------------- *)

let collapsed_well_formed () =
  with_profile (fun () ->
      let nf = replay_profiled ~name:"lb-hash-table" ~seed:3 ~samples:300 in
      let program = nf.Nf.Nf_def.program in
      let out = Castan.Profile_report.collapsed ~nf:"lb-hash-table" program in
      let lines =
        String.split_on_char '\n' out |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check bool) "has stacks" true (lines <> []);
      let sum =
        List.fold_left
          (fun acc line ->
            let sp =
              match String.rindex_opt line ' ' with
              | Some i -> i
              | None -> Alcotest.failf "no count in %S" line
            in
            let frames = String.sub line 0 sp in
            if String.contains frames ' ' then
              Alcotest.failf "space inside frames of %S" line;
            (match String.split_on_char ';' frames with
            | [ nf_frame; _func; _block ] ->
                Alcotest.(check string) "nf frame" "lb-hash-table" nf_frame
            | _ -> Alcotest.failf "expected 3 frames in %S" line);
            let count =
              match
                int_of_string_opt
                  (String.sub line (sp + 1) (String.length line - sp - 1))
              with
              | Some n when n > 0 -> n
              | _ -> Alcotest.failf "bad count in %S" line
            in
            acc + count)
          0 lines
      in
      let rows = Castan.Profile_report.rows program in
      Alcotest.(check int) "counts sum to attributed total"
        (Castan.Profile_report.total_cycles rows)
        sum;
      (* the JSON surface reports the same total *)
      match
        Obs.Json.member "total_cycles"
          (Castan.Profile_report.to_json ~nf:"lb-hash-table" program)
      with
      | Some (Obs.Json.Int n) ->
          Alcotest.(check int) "json total matches" sum n
      | _ -> Alcotest.fail "profile json lacks total_cycles")

(* ---------------- symbex attribution ---------------- *)

let analysis_config () =
  { (Castan.Analyze.default_config ()) with
    n_packets = Some 4;
    time_budget = 300.0;
    instr_budget = 150_000 }

let symbex_attributes_sites_and_timers () =
  with_profile (fun () ->
      let nf = Nf.Registry.find "lpm-btrie" in
      ignore
        (Castan.Analyze.run ~config:(analysis_config ()) nf
          : Castan.Analyze.outcome);
      Alcotest.(check bool) "symbolic execution attributed sites" true
        (Obs.Profile.sites () <> []);
      let timers = Obs.Profile.timers () in
      Alcotest.(check bool) "symbex timer" true (List.mem_assoc "symbex" timers);
      Alcotest.(check bool) "solver timer" true
        (List.mem_assoc "solver" timers))

(* ---------------- no perturbation ---------------- *)

let fingerprint () =
  let nf = Nf.Registry.find "lpm-btrie" in
  let o = Castan.Analyze.run ~config:(analysis_config ()) nf in
  ( o.Castan.Analyze.predicted_cost,
    Array.to_list o.Castan.Analyze.workload.Testbed.Workload.packets
    |> List.map Nf.Packet.to_string )

let profiler_off_vs_on_identical () =
  let off = fingerprint () in
  let on = with_profile fingerprint in
  Alcotest.(check int) "same predicted cost" (fst off) (fst on);
  Alcotest.(check (list string)) "same workload" (snd off) (snd on)

let tests =
  [
    Alcotest.test_case "disabled: records nothing" `Quick
      disabled_records_nothing;
    Alcotest.test_case "pre-enter attributions dropped" `Quick
      pre_enter_attributions_dropped;
    Alcotest.test_case "replay: collapsed byte-identical" `Quick
      replay_collapsed_deterministic;
    Alcotest.test_case "collapsed: well-formed, sums to total" `Quick
      collapsed_well_formed;
    Alcotest.test_case "symbex: sites and wall-time buckets" `Quick
      symbex_attributes_sites_and_timers;
    Alcotest.test_case "no perturbation: analysis identical" `Slow
      profiler_off_vs_on_identical;
  ]
